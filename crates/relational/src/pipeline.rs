//! [`ViewDef`]: a declarative AST for single-table view definitions that
//! compiles to a composed bidirectional lens.
//!
//! This is the "view definition language" a database exposes to clients:
//! a fragment of the relational algebra (select / project / rename) whose
//! every operator is bidirectionalisable, compiled by [`ViewDef::compile`]
//! into one `Lens<Table, Table>` via ordinary lens composition — and
//! therefore, via Lemma 4, usable as an entangled state monad over the
//! base table.

use esm_lens::{DeltaLens, DeltaOutcome, Lens};
use esm_store::row::project_row;
use esm_store::{Delta, Predicate, Schema, StoreError, Table, Value};

use crate::project::project_lens_checked;
use crate::rename::rename_lens;
use crate::select::select_lens;

/// A bidirectional view definition over a single base table.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewDef {
    /// The base table itself.
    Base,
    /// Filter rows by a predicate.
    Select(Box<ViewDef>, Predicate),
    /// Keep only the named columns (with defaults for re-created rows).
    Project(Box<ViewDef>, Vec<String>, Vec<(String, Value)>),
    /// Rename columns.
    Rename(Box<ViewDef>, Vec<(String, String)>),
    /// Maintain the wrapped view's window **eagerly at commit time**
    /// (inside the committing transaction's critical section) instead of
    /// lazily at the next read. Semantically transparent: the compiled
    /// lens and every schema-discipline helper see straight through it —
    /// only engines inspect it (via [`ViewDef::is_eager`]) to schedule
    /// maintenance.
    Eager(Box<ViewDef>),
}

impl ViewDef {
    /// Start from the base table.
    pub fn base() -> ViewDef {
        ViewDef::Base
    }

    /// Filter by predicate.
    pub fn select(self, pred: Predicate) -> ViewDef {
        ViewDef::Select(Box::new(self), pred)
    }

    /// Project onto columns, with defaults for hidden columns of created
    /// rows.
    pub fn project(self, cols: &[&str], defaults: &[(&str, Value)]) -> ViewDef {
        ViewDef::Project(
            Box::new(self),
            cols.iter().map(|c| c.to_string()).collect(),
            defaults
                .iter()
                .map(|(c, v)| (c.to_string(), v.clone()))
                .collect(),
        )
    }

    /// Rename columns.
    pub fn rename(self, renames: &[(&str, &str)]) -> ViewDef {
        ViewDef::Rename(
            Box::new(self),
            renames
                .iter()
                .map(|(o, n)| (o.to_string(), n.to_string()))
                .collect(),
        )
    }

    /// Request eager commit-time maintenance for this view (idempotent).
    /// Write-heavy views (and every view a subscriber pushes from) stay
    /// fresh at the commit instead of paying drain latency on the next
    /// read; the cost is window maintenance inside the commit's critical
    /// section.
    pub fn eager(self) -> ViewDef {
        if self.is_eager() {
            self
        } else {
            ViewDef::Eager(Box::new(self))
        }
    }

    /// Does any stage of this definition request eager commit-time
    /// maintenance?
    pub fn is_eager(&self) -> bool {
        match self {
            ViewDef::Base => false,
            ViewDef::Select(inner, _)
            | ViewDef::Project(inner, _, _)
            | ViewDef::Rename(inner, _) => inner.is_eager(),
            ViewDef::Eager(_) => true,
        }
    }

    /// Base-table columns that this view's select stages constrain with
    /// index-servable comparisons (`col ⋈ literal` conjuncts), collected
    /// only from stages that still see the base schema (i.e. before any
    /// project/rename). A session can create secondary indexes on these
    /// columns so reading the view seeks instead of scanning.
    pub fn index_candidates(&self) -> Vec<String> {
        // Returns whether `def`'s output schema is still the base schema.
        fn collect(def: &ViewDef, out: &mut Vec<String>) -> bool {
            match def {
                ViewDef::Base => true,
                ViewDef::Select(inner, pred) => {
                    let over_base = collect(inner, out);
                    if over_base {
                        for col in pred.probeable_columns() {
                            if !out.contains(&col) {
                                out.push(col);
                            }
                        }
                    }
                    over_base
                }
                ViewDef::Project(inner, _, _) | ViewDef::Rename(inner, _) => {
                    collect(inner, out);
                    false
                }
                ViewDef::Eager(inner) => collect(inner, out),
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// The tightest bounds every select stage that still sees the base
    /// schema implies on `column` (their conjunction — the same
    /// base-schema discipline as [`ViewDef::index_candidates`]). With
    /// `column` a key column, a sharded engine uses this to prune view
    /// reads and writes to the shards whose key range the view window can
    /// touch; views that do not constrain the key come back unbounded.
    pub fn key_bounds(&self, column: &str) -> (std::ops::Bound<Value>, std::ops::Bound<Value>) {
        // Returns whether `def`'s output schema is still the base schema.
        fn collect(def: &ViewDef, preds: &mut Vec<Predicate>) -> bool {
            match def {
                ViewDef::Base => true,
                ViewDef::Select(inner, pred) => {
                    let over_base = collect(inner, preds);
                    if over_base {
                        preds.push(pred.clone());
                    }
                    over_base
                }
                ViewDef::Project(inner, _, _) | ViewDef::Rename(inner, _) => {
                    collect(inner, preds);
                    false
                }
                ViewDef::Eager(inner) => collect(inner, preds),
            }
        }
        let mut preds = Vec::new();
        collect(self, &mut preds);
        match preds.into_iter().reduce(Predicate::and) {
            Some(combined) => combined.value_bounds(column),
            None => (std::ops::Bound::Unbounded, std::ops::Bound::Unbounded),
        }
    }

    /// [`ViewDef::compile`] with a delta propagator: the returned
    /// [`DeltaLens`] additionally maps committed base-table [`Delta`]s to
    /// view deltas, so an engine can maintain a materialized window
    /// incrementally instead of re-running the lens `get` per read.
    ///
    /// Every relational stage propagates exactly:
    /// * **select** filters the delta's rows by its predicate (an
    ///   evaluation error falls back to [`DeltaOutcome::Rebuild`]);
    /// * **project** maps rows through the projection — exact because the
    ///   compiled lens retains the key, so distinct base rows never merge;
    /// * **rename** passes rows through untouched (schema-only change).
    pub fn compile_delta(
        &self,
        base: &Table,
    ) -> Result<DeltaLens<Table, Table, Delta>, StoreError> {
        match self {
            ViewDef::Base => Ok(DeltaLens::new(esm_lens::combinators::id(), |d: &Delta| {
                DeltaOutcome::View(d.clone())
            })),
            ViewDef::Select(inner, pred) => {
                let prefix = inner.compile_delta(base)?;
                let mid = prefix.get(base);
                pred.validate(mid.schema())?;
                let stage = DeltaLens::new(
                    select_lens(pred.clone()),
                    select_delta(pred.clone(), mid.schema().clone()),
                );
                Ok(prefix.then(stage))
            }
            ViewDef::Project(inner, cols, defaults) => {
                let prefix = inner.compile_delta(base)?;
                let mid = prefix.get(base);
                let cols_ref: Vec<&str> = cols.iter().map(String::as_str).collect();
                let defaults_ref: Vec<(&str, Value)> = defaults
                    .iter()
                    .map(|(c, v)| (c.as_str(), v.clone()))
                    .collect();
                let lens = project_lens_checked(&mid, &cols_ref, &defaults_ref)?;
                let indices = mid.schema().indices_of(cols)?;
                let stage = DeltaLens::new(lens, move |d: &Delta| {
                    DeltaOutcome::View(Delta {
                        inserted: d
                            .inserted
                            .iter()
                            .map(|r| project_row(r, &indices))
                            .collect(),
                        deleted: d.deleted.iter().map(|r| project_row(r, &indices)).collect(),
                    })
                });
                Ok(prefix.then(stage))
            }
            ViewDef::Rename(inner, renames) => {
                let prefix = inner.compile_delta(base)?;
                let mid = prefix.get(base);
                for (old, _) in renames {
                    mid.schema().index_of(old)?;
                }
                let renames_ref: Vec<(&str, &str)> = renames
                    .iter()
                    .map(|(o, n)| (o.as_str(), n.as_str()))
                    .collect();
                // Renaming changes the header, not the rows: deltas pass
                // through untouched.
                let stage = DeltaLens::new(rename_lens(&renames_ref), |d: &Delta| {
                    DeltaOutcome::View(d.clone())
                });
                Ok(prefix.then(stage))
            }
            ViewDef::Eager(inner) => inner.compile_delta(base),
        }
    }

    /// Compile to a lens, validating each stage against the schema it will
    /// actually see (computed by running the prefix against `base`).
    pub fn compile(&self, base: &Table) -> Result<Lens<Table, Table>, StoreError> {
        match self {
            ViewDef::Base => Ok(esm_lens::combinators::id()),
            ViewDef::Select(inner, pred) => {
                let prefix = inner.compile(base)?;
                let mid = prefix.get(base);
                pred.validate(mid.schema())?;
                Ok(prefix.then(select_lens(pred.clone())))
            }
            ViewDef::Project(inner, cols, defaults) => {
                let prefix = inner.compile(base)?;
                let mid = prefix.get(base);
                let cols_ref: Vec<&str> = cols.iter().map(String::as_str).collect();
                let defaults_ref: Vec<(&str, Value)> = defaults
                    .iter()
                    .map(|(c, v)| (c.as_str(), v.clone()))
                    .collect();
                let l = project_lens_checked(&mid, &cols_ref, &defaults_ref)?;
                Ok(prefix.then(l))
            }
            ViewDef::Rename(inner, renames) => {
                let prefix = inner.compile(base)?;
                let mid = prefix.get(base);
                for (old, _) in renames {
                    mid.schema().index_of(old)?;
                }
                let renames_ref: Vec<(&str, &str)> = renames
                    .iter()
                    .map(|(o, n)| (o.as_str(), n.as_str()))
                    .collect();
                Ok(prefix.then(rename_lens(&renames_ref)))
            }
            ViewDef::Eager(inner) => inner.compile(base),
        }
    }
}

/// The select stage's delta propagator: a base change enters the view iff
/// it satisfies the predicate — inserted rows that satisfy it appear,
/// deleted rows that satisfied it disappear, everything else is invisible.
/// A predicate evaluation error (possible only for column/column
/// comparisons over mixed-type rows) conservatively asks for a rebuild.
fn select_delta(
    pred: Predicate,
    schema: Schema,
) -> impl Fn(&Delta) -> DeltaOutcome<Delta> + Send + Sync + 'static {
    move |d: &Delta| {
        let mut out = Delta::empty();
        for row in &d.inserted {
            match pred.eval(&schema, row) {
                Ok(true) => out.inserted.push(row.clone()),
                Ok(false) => {}
                Err(_) => return DeltaOutcome::Rebuild,
            }
        }
        for row in &d.deleted {
            match pred.eval(&schema, row) {
                Ok(true) => out.deleted.push(row.clone()),
                Ok(false) => {}
                Err(_) => return DeltaOutcome::Rebuild,
            }
        }
        DeltaOutcome::View(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Operand, Schema, ValueType};

    fn employees() -> Table {
        Table::from_rows(
            Schema::build(
                &[
                    ("eid", ValueType::Int),
                    ("name", ValueType::Str),
                    ("dept", ValueType::Str),
                    ("salary", ValueType::Int),
                ],
                &["eid"],
            )
            .unwrap(),
            vec![
                row![1, "ada", "research", 90_000],
                row![2, "alan", "ops", 80_000],
                row![3, "grace", "research", 95_000],
            ],
        )
        .unwrap()
    }

    #[test]
    fn multi_stage_view_compiles_and_roundtrips() {
        let def = ViewDef::base()
            .select(Predicate::eq(
                Operand::col("dept"),
                Operand::val("research"),
            ))
            .project(
                &["eid", "name"],
                &[
                    ("dept", Value::str("research")),
                    ("salary", Value::Int(50_000)),
                ],
            )
            .rename(&[("name", "researcher")]);
        let base = employees();
        let lens = def.compile(&base).unwrap();

        let v = lens.get(&base);
        assert_eq!(v.schema().column_names(), vec!["eid", "researcher"]);
        assert_eq!(v.len(), 2);

        // Edit the view: rename grace, add a new researcher.
        let v2 = Table::from_rows(
            v.schema().clone(),
            vec![row![1, "ada"], row![3, "grace hopper"], row![4, "barbara"]],
        )
        .unwrap();
        let base2 = lens.put(base, v2);
        // grace renamed, salary preserved.
        assert!(base2.contains(&row![3, "grace hopper", "research", 95_000]));
        // barbara created with stage defaults.
        assert!(base2.contains(&row![4, "barbara", "research", 50_000]));
        // ops row untouched.
        assert!(base2.contains(&row![2, "alan", "ops", 80_000]));
    }

    #[test]
    fn compile_validates_against_the_intermediate_schema() {
        // Selecting on a column that projection has already dropped.
        let def = ViewDef::base()
            .project(&["eid", "name"], &[])
            .select(Predicate::eq(Operand::col("dept"), Operand::val("x")));
        assert!(def.compile(&employees()).is_err());
    }

    #[test]
    fn project_must_keep_the_key() {
        let def = ViewDef::base().project(&["name"], &[]);
        assert!(def.compile(&employees()).is_err());
    }

    #[test]
    fn index_candidates_stop_at_schema_changes() {
        let over_base = ViewDef::base()
            .select(Predicate::eq(
                Operand::col("dept"),
                Operand::val("research"),
            ))
            .select(
                Predicate::ge(Operand::col("salary"), Operand::val(1))
                    .and(Predicate::ne(Operand::col("name"), Operand::val("x"))),
            );
        // dept and salary are probe-able; `ne` never is.
        assert_eq!(over_base.index_candidates(), vec!["dept", "salary"]);

        // After a rename the select no longer sees the base schema.
        let after_rename = ViewDef::base()
            .rename(&[("dept", "team")])
            .select(Predicate::eq(
                Operand::col("team"),
                Operand::val("research"),
            ));
        assert!(after_rename.index_candidates().is_empty());
    }

    #[test]
    fn base_view_is_the_identity() {
        let base = employees();
        let lens = ViewDef::base().compile(&base).unwrap();
        assert_eq!(lens.get(&base), base);
    }

    /// The incremental law: `get_delta(Δbase)` applied to the old view
    /// equals `get` of the new base, for every stage combination.
    fn assert_incremental(def: &ViewDef, old_base: &Table, new_base: &Table) {
        let lens = def.compile_delta(old_base).unwrap();
        let base_delta = Delta::between(old_base, new_base).unwrap();
        match lens.get_delta(&base_delta) {
            DeltaOutcome::View(view_delta) => {
                let maintained = view_delta.apply(&lens.get(old_base)).unwrap();
                assert_eq!(maintained, lens.get(new_base), "def {def:?}");
            }
            DeltaOutcome::Rebuild => panic!("relational stages propagate exactly: {def:?}"),
        }
    }

    #[test]
    fn delta_propagation_matches_recompute_per_stage() {
        let old_base = employees();
        let mut new_base = old_base.clone();
        new_base
            .upsert(row![2, "alan", "research", 81_000])
            .unwrap(); // dept change: enters selects
        new_base.upsert(row![4, "barbara", "ops", 70_000]).unwrap(); // fresh row
        new_base.delete_by_key(&row![3]); // leaves selects

        let defs = [
            ViewDef::base(),
            ViewDef::base().select(Predicate::eq(
                Operand::col("dept"),
                Operand::val("research"),
            )),
            ViewDef::base().project(&["eid", "name"], &[("salary", Value::Int(1))]),
            ViewDef::base().rename(&[("name", "who")]),
            ViewDef::base()
                .select(Predicate::ge(Operand::col("salary"), Operand::val(80_000)))
                .project(&["eid", "name"], &[])
                .rename(&[("name", "earner")]),
        ];
        for def in &defs {
            assert_incremental(def, &old_base, &new_base);
        }
        // Hidden-column-only updates net out of a projected view.
        let mut salary_only = old_base.clone();
        salary_only
            .upsert(row![1, "ada", "research", 99_000])
            .unwrap();
        assert_incremental(&defs[2], &old_base, &salary_only);
    }

    #[test]
    fn eager_wrapper_is_semantically_transparent() {
        let base = employees();
        let plain = ViewDef::base()
            .select(Predicate::eq(
                Operand::col("dept"),
                Operand::val("research"),
            ))
            .rename(&[("name", "who")]);
        let eager = plain.clone().eager();
        assert!(!plain.is_eager());
        assert!(eager.is_eager());
        // Idempotent.
        assert_eq!(eager.clone().eager(), eager);
        // Compiles to the same view; schema helpers see through it.
        assert_eq!(
            eager.compile(&base).unwrap().get(&base),
            plain.compile(&base).unwrap().get(&base)
        );
        assert_eq!(eager.index_candidates(), plain.index_candidates());
        assert_eq!(eager.key_bounds("eid"), plain.key_bounds("eid"));
        // Builders layered on top keep the flag.
        assert!(ViewDef::base()
            .eager()
            .rename(&[("name", "who")])
            .is_eager());
    }

    #[test]
    fn key_bounds_intersect_base_schema_selects() {
        use std::ops::Bound;
        let def = ViewDef::base()
            .select(Predicate::ge(Operand::col("eid"), Operand::val(10)))
            .select(Predicate::lt(Operand::col("eid"), Operand::val(20)));
        assert_eq!(
            def.key_bounds("eid"),
            (
                Bound::Included(Value::Int(10)),
                Bound::Excluded(Value::Int(20))
            )
        );
        // Selects after a rename no longer see the base schema: no bound.
        let renamed = ViewDef::base()
            .rename(&[("eid", "id")])
            .select(Predicate::ge(Operand::col("id"), Operand::val(10)));
        assert_eq!(
            renamed.key_bounds("eid"),
            (Bound::Unbounded, Bound::Unbounded)
        );
        // Non-key selects leave the key unconstrained.
        let by_dept = ViewDef::base().select(Predicate::eq(
            Operand::col("dept"),
            Operand::val("research"),
        ));
        assert_eq!(
            by_dept.key_bounds("eid"),
            (Bound::Unbounded, Bound::Unbounded)
        );
    }
}
