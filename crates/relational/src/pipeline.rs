//! [`ViewDef`]: a declarative AST for single-table view definitions that
//! compiles to a composed bidirectional lens.
//!
//! This is the "view definition language" a database exposes to clients:
//! a fragment of the relational algebra (select / project / rename) whose
//! every operator is bidirectionalisable, compiled by [`ViewDef::compile`]
//! into one `Lens<Table, Table>` via ordinary lens composition — and
//! therefore, via Lemma 4, usable as an entangled state monad over the
//! base table.

use esm_lens::Lens;
use esm_store::{Predicate, StoreError, Table, Value};

use crate::project::project_lens_checked;
use crate::rename::rename_lens;
use crate::select::select_lens;

/// A bidirectional view definition over a single base table.
#[derive(Debug, Clone)]
pub enum ViewDef {
    /// The base table itself.
    Base,
    /// Filter rows by a predicate.
    Select(Box<ViewDef>, Predicate),
    /// Keep only the named columns (with defaults for re-created rows).
    Project(Box<ViewDef>, Vec<String>, Vec<(String, Value)>),
    /// Rename columns.
    Rename(Box<ViewDef>, Vec<(String, String)>),
}

impl ViewDef {
    /// Start from the base table.
    pub fn base() -> ViewDef {
        ViewDef::Base
    }

    /// Filter by predicate.
    pub fn select(self, pred: Predicate) -> ViewDef {
        ViewDef::Select(Box::new(self), pred)
    }

    /// Project onto columns, with defaults for hidden columns of created
    /// rows.
    pub fn project(self, cols: &[&str], defaults: &[(&str, Value)]) -> ViewDef {
        ViewDef::Project(
            Box::new(self),
            cols.iter().map(|c| c.to_string()).collect(),
            defaults
                .iter()
                .map(|(c, v)| (c.to_string(), v.clone()))
                .collect(),
        )
    }

    /// Rename columns.
    pub fn rename(self, renames: &[(&str, &str)]) -> ViewDef {
        ViewDef::Rename(
            Box::new(self),
            renames
                .iter()
                .map(|(o, n)| (o.to_string(), n.to_string()))
                .collect(),
        )
    }

    /// Base-table columns that this view's select stages constrain with
    /// index-servable comparisons (`col ⋈ literal` conjuncts), collected
    /// only from stages that still see the base schema (i.e. before any
    /// project/rename). A session can create secondary indexes on these
    /// columns so reading the view seeks instead of scanning.
    pub fn index_candidates(&self) -> Vec<String> {
        // Returns whether `def`'s output schema is still the base schema.
        fn collect(def: &ViewDef, out: &mut Vec<String>) -> bool {
            match def {
                ViewDef::Base => true,
                ViewDef::Select(inner, pred) => {
                    let over_base = collect(inner, out);
                    if over_base {
                        for col in pred.probeable_columns() {
                            if !out.contains(&col) {
                                out.push(col);
                            }
                        }
                    }
                    over_base
                }
                ViewDef::Project(inner, _, _) | ViewDef::Rename(inner, _) => {
                    collect(inner, out);
                    false
                }
            }
        }
        let mut out = Vec::new();
        collect(self, &mut out);
        out
    }

    /// Compile to a lens, validating each stage against the schema it will
    /// actually see (computed by running the prefix against `base`).
    pub fn compile(&self, base: &Table) -> Result<Lens<Table, Table>, StoreError> {
        match self {
            ViewDef::Base => Ok(esm_lens::combinators::id()),
            ViewDef::Select(inner, pred) => {
                let prefix = inner.compile(base)?;
                let mid = prefix.get(base);
                pred.validate(mid.schema())?;
                Ok(prefix.then(select_lens(pred.clone())))
            }
            ViewDef::Project(inner, cols, defaults) => {
                let prefix = inner.compile(base)?;
                let mid = prefix.get(base);
                let cols_ref: Vec<&str> = cols.iter().map(String::as_str).collect();
                let defaults_ref: Vec<(&str, Value)> = defaults
                    .iter()
                    .map(|(c, v)| (c.as_str(), v.clone()))
                    .collect();
                let l = project_lens_checked(&mid, &cols_ref, &defaults_ref)?;
                Ok(prefix.then(l))
            }
            ViewDef::Rename(inner, renames) => {
                let prefix = inner.compile(base)?;
                let mid = prefix.get(base);
                for (old, _) in renames {
                    mid.schema().index_of(old)?;
                }
                let renames_ref: Vec<(&str, &str)> = renames
                    .iter()
                    .map(|(o, n)| (o.as_str(), n.as_str()))
                    .collect();
                Ok(prefix.then(rename_lens(&renames_ref)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Operand, Schema, ValueType};

    fn employees() -> Table {
        Table::from_rows(
            Schema::build(
                &[
                    ("eid", ValueType::Int),
                    ("name", ValueType::Str),
                    ("dept", ValueType::Str),
                    ("salary", ValueType::Int),
                ],
                &["eid"],
            )
            .unwrap(),
            vec![
                row![1, "ada", "research", 90_000],
                row![2, "alan", "ops", 80_000],
                row![3, "grace", "research", 95_000],
            ],
        )
        .unwrap()
    }

    #[test]
    fn multi_stage_view_compiles_and_roundtrips() {
        let def = ViewDef::base()
            .select(Predicate::eq(
                Operand::col("dept"),
                Operand::val("research"),
            ))
            .project(
                &["eid", "name"],
                &[
                    ("dept", Value::str("research")),
                    ("salary", Value::Int(50_000)),
                ],
            )
            .rename(&[("name", "researcher")]);
        let base = employees();
        let lens = def.compile(&base).unwrap();

        let v = lens.get(&base);
        assert_eq!(v.schema().column_names(), vec!["eid", "researcher"]);
        assert_eq!(v.len(), 2);

        // Edit the view: rename grace, add a new researcher.
        let v2 = Table::from_rows(
            v.schema().clone(),
            vec![row![1, "ada"], row![3, "grace hopper"], row![4, "barbara"]],
        )
        .unwrap();
        let base2 = lens.put(base, v2);
        // grace renamed, salary preserved.
        assert!(base2.contains(&row![3, "grace hopper", "research", 95_000]));
        // barbara created with stage defaults.
        assert!(base2.contains(&row![4, "barbara", "research", 50_000]));
        // ops row untouched.
        assert!(base2.contains(&row![2, "alan", "ops", 80_000]));
    }

    #[test]
    fn compile_validates_against_the_intermediate_schema() {
        // Selecting on a column that projection has already dropped.
        let def = ViewDef::base()
            .project(&["eid", "name"], &[])
            .select(Predicate::eq(Operand::col("dept"), Operand::val("x")));
        assert!(def.compile(&employees()).is_err());
    }

    #[test]
    fn project_must_keep_the_key() {
        let def = ViewDef::base().project(&["name"], &[]);
        assert!(def.compile(&employees()).is_err());
    }

    #[test]
    fn index_candidates_stop_at_schema_changes() {
        let over_base = ViewDef::base()
            .select(Predicate::eq(
                Operand::col("dept"),
                Operand::val("research"),
            ))
            .select(
                Predicate::ge(Operand::col("salary"), Operand::val(1))
                    .and(Predicate::ne(Operand::col("name"), Operand::val("x"))),
            );
        // dept and salary are probe-able; `ne` never is.
        assert_eq!(over_base.index_candidates(), vec!["dept", "salary"]);

        // After a rename the select no longer sees the base schema.
        let after_rename = ViewDef::base()
            .rename(&[("dept", "team")])
            .select(Predicate::eq(
                Operand::col("team"),
                Operand::val("research"),
            ));
        assert!(after_rename.index_candidates().is_empty());
    }

    #[test]
    fn base_view_is_the_identity() {
        let base = employees();
        let lens = ViewDef::base().compile(&base).unwrap();
        assert_eq!(lens.get(&base), base);
    }
}
