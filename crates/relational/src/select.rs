//! The select lens: `σ_P` as a bidirectional view.

use esm_lens::Lens;
use esm_store::{Predicate, StoreError, Table};

/// The select lens for predicate `p`:
///
/// ```text
/// get(s)    = σ_p(s)
/// put(s, v) = (s ∖ σ_p(s)) ⊎ v        (⊎ = key-respecting upsert)
/// ```
///
/// Rows currently visible are replaced wholesale by the edited view; rows
/// invisible to the view survive, except that a view row whose key
/// collides with an invisible row *captures* the key (the view edit is
/// authoritative).
///
/// Well-behavedness domain (checked by the law suites):
/// * (GetPut), (PutPut): unconditional.
/// * (PutGet): requires every view row to satisfy `p` — the relational
///   lens "view typing" obligation, testable with
///   [`validate_select_view`].
pub fn select_lens(p: Predicate) -> Lens<Table, Table> {
    let p_get = p.clone();
    Lens::new(
        move |s: &Table| {
            s.select(&p_get)
                .expect("select lens predicate must fit the schema")
        },
        move |s: Table, v: Table| {
            let visible = s
                .select(&p)
                .expect("select lens predicate must fit the schema");
            let mut out = s;
            for row in visible.rows() {
                out.delete(row);
            }
            for row in v.rows() {
                out.upsert(row.clone())
                    .expect("view rows must fit the source schema");
            }
            out
        },
    )
}

/// Check the select lens's view-typing obligation: every row of `v` must
/// satisfy `p`. Returns the offending rows.
pub fn validate_select_view(p: &Predicate, v: &Table) -> Result<(), StoreError> {
    for row in v.rows() {
        if !p.eval(v.schema(), row)? {
            return Err(StoreError::BadQuery(format!(
                "view row {row:?} does not satisfy the selection predicate {p}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_lens::laws::{check_put_get, check_very_well_behaved};
    use esm_store::{row, Operand, Schema, Value, ValueType};

    fn people(rows: Vec<Vec<Value>>) -> Table {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("age", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        Table::from_rows(schema, rows).unwrap()
    }

    fn adults() -> Predicate {
        Predicate::ge(Operand::col("age"), Operand::val(18))
    }

    #[test]
    fn get_is_selection() {
        let l = select_lens(adults());
        let t = people(vec![row![1, "ada", 36], row![2, "kid", 9]]);
        let v = l.get(&t);
        assert_eq!(v.len(), 1);
        assert!(v.contains(&row![1, "ada", 36]));
    }

    #[test]
    fn put_replaces_visible_rows_and_keeps_invisible_ones() {
        let l = select_lens(adults());
        let t = people(vec![row![1, "ada", 36], row![2, "kid", 9]]);
        // Edit the view: change ada's age, add alan.
        let v = people(vec![row![1, "ada", 37], row![3, "alan", 41]]);
        let t2 = l.put(t, v);
        assert_eq!(t2.len(), 3);
        assert!(t2.contains(&row![1, "ada", 37]));
        assert!(t2.contains(&row![2, "kid", 9])); // invisible row survives
        assert!(t2.contains(&row![3, "alan", 41]));
    }

    #[test]
    fn deleting_view_rows_deletes_source_rows() {
        let l = select_lens(adults());
        let t = people(vec![row![1, "ada", 36], row![2, "kid", 9]]);
        let empty_view = people(vec![]);
        let t2 = l.put(t, empty_view);
        assert_eq!(t2.len(), 1);
        assert!(t2.contains(&row![2, "kid", 9]));
    }

    #[test]
    fn view_edit_captures_colliding_keys() {
        // A view row re-using an invisible row's key wins.
        let l = select_lens(adults());
        let t = people(vec![row![2, "kid", 9]]);
        let v = people(vec![row![2, "grown kid", 19]]);
        let t2 = l.put(t, v);
        assert_eq!(t2.len(), 1);
        assert!(t2.contains(&row![2, "grown kid", 19]));
    }

    #[test]
    fn lawful_on_predicate_respecting_views() {
        let l = select_lens(adults());
        let sources = [
            people(vec![row![1, "ada", 36], row![2, "kid", 9]]),
            people(vec![]),
            people(vec![row![5, "x", 20]]),
        ];
        let views = [
            people(vec![row![1, "ada", 40]]),
            people(vec![]),
            people(vec![row![9, "new", 77], row![1, "ada", 18]]),
        ];
        assert!(check_very_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn put_get_fails_on_invalid_views() {
        // A view row violating the predicate disappears on re-get: the
        // documented typing obligation.
        let l = select_lens(adults());
        let sources = [people(vec![])];
        let bad_views = [people(vec![row![7, "baby", 1]])];
        assert!(!check_put_get(&l, &sources, &bad_views).is_empty());
        assert!(validate_select_view(&adults(), &bad_views[0]).is_err());
    }

    #[test]
    fn validate_accepts_good_views() {
        assert!(validate_select_view(&adults(), &people(vec![row![1, "a", 30]])).is_ok());
    }
}
