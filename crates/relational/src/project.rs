//! The project lens: `π_cols` as a bidirectional view, with defaults for
//! the hidden columns.

use std::collections::BTreeMap;

use esm_lens::Lens;
use esm_store::{Row, StoreError, Table, Value};

/// The project lens onto `cols`:
///
/// ```text
/// get(s)    = π_cols(s)
/// put(s, v) = for each view row: merge with the key-matched source row
///             (hidden columns from the source), or extend with `defaults`
///             for fresh keys; source rows whose key is absent from the
///             view are deleted.
/// ```
///
/// `defaults` supplies values for the dropped columns of newly-created
/// rows; unspecified dropped columns use their type's neutral default.
///
/// Well-behavedness domain (checked by the law suites):
/// * requires `cols ⊇ key(s)` — otherwise projection merges rows and
///   `put(s, get(s))` loses data. [`project_lens_checked`] enforces this.
/// * (GetPut)/(PutGet): unconditional given the key condition.
/// * (PutPut): fails across delete-then-recreate sequences (the recreated
///   row gets defaults, not its old hidden values) — the classic
///   relational-lens caveat, demonstrated in tests.
pub fn project_lens(cols: &[&str], defaults: &[(&str, Value)]) -> Lens<Table, Table> {
    let cols: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
    let defaults: BTreeMap<String, Value> = defaults
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    let cols_get = cols.clone();
    Lens::new(
        move |s: &Table| s.project(&cols_get).expect("projection columns must exist"),
        move |s: Table, v: Table| put_project(&s, &v, &cols, &defaults).expect("project lens put"),
    )
}

/// [`project_lens`], but validating the key condition against a concrete
/// source schema up front.
pub fn project_lens_checked(
    source: &Table,
    cols: &[&str],
    defaults: &[(&str, Value)],
) -> Result<Lens<Table, Table>, StoreError> {
    let key = source.schema().key();
    if key.is_empty() {
        return Err(StoreError::BadQuery(
            "project lens requires the source to declare a key".into(),
        ));
    }
    for k in key {
        if !cols.contains(&k.as_str()) {
            return Err(StoreError::BadQuery(format!(
                "project lens must retain key column {k}"
            )));
        }
    }
    for c in cols {
        source.schema().index_of(c)?;
    }
    Ok(project_lens(cols, defaults))
}

fn put_project(
    s: &Table,
    v: &Table,
    cols: &[String],
    defaults: &BTreeMap<String, Value>,
) -> Result<Table, StoreError> {
    let src_schema = s.schema();
    let view_schema = v.schema();
    // For each source column: position in the view (if visible).
    let plan: Vec<(usize, Option<usize>)> = src_schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let vpos = cols.iter().position(|vc| *vc == c.name).map(|p| {
                view_schema
                    .index_of(&cols[p])
                    .expect("view schema must expose the projected columns")
            });
            (i, vpos)
        })
        .collect();
    // Key indices of the source, mapped to view positions.
    let key_view_positions: Vec<usize> = src_schema
        .key_indices()
        .iter()
        .map(|&ki| {
            plan[ki]
                .1
                .expect("project lens requires the view to retain all key columns")
        })
        .collect();

    let mut out = Table::new(src_schema.clone());
    for vrow in v.rows() {
        let key: Row = key_view_positions
            .iter()
            .map(|&i| vrow[i].clone())
            .collect();
        let existing = s.get_by_key(&key);
        let mut row: Row = Vec::with_capacity(src_schema.arity());
        for (i, vpos) in &plan {
            match vpos {
                Some(p) => row.push(vrow[*p].clone()),
                None => match existing {
                    Some(srow) => row.push(srow[*i].clone()),
                    None => {
                        let col = &src_schema.columns()[*i];
                        let d = defaults
                            .get(&col.name)
                            .cloned()
                            .unwrap_or_else(|| col.ty.default_value());
                        row.push(d);
                    }
                },
            }
        }
        out.insert(row)?;
    }
    Ok(out)
}

/// Drop a single column (project onto everything else), with a default for
/// re-created rows. The dropped column must not be part of the key.
pub fn drop_lens(
    source: &Table,
    col: &str,
    default: Value,
) -> Result<Lens<Table, Table>, StoreError> {
    let keep: Vec<String> = source
        .schema()
        .column_names()
        .into_iter()
        .filter(|c| *c != col)
        .map(|c| c.to_string())
        .collect();
    if keep.len() == source.schema().arity() {
        return Err(StoreError::NoSuchColumn(col.to_string()));
    }
    let keep_ref: Vec<&str> = keep.iter().map(String::as_str).collect();
    project_lens_checked(source, &keep_ref, &[(col, default)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_lens::laws::{check_put_put, check_well_behaved};
    use esm_store::{row, Schema, ValueType};

    fn people(rows: Vec<Row>) -> Table {
        let schema = Schema::build(
            &[
                ("id", ValueType::Int),
                ("name", ValueType::Str),
                ("salary", ValueType::Int),
            ],
            &["id"],
        )
        .unwrap();
        Table::from_rows(schema, rows).unwrap()
    }

    fn view(rows: Vec<Row>) -> Table {
        let schema =
            Schema::build(&[("id", ValueType::Int), ("name", ValueType::Str)], &["id"]).unwrap();
        Table::from_rows(schema, rows).unwrap()
    }

    fn lens() -> Lens<Table, Table> {
        project_lens(&["id", "name"], &[("salary", Value::Int(30_000))])
    }

    #[test]
    fn get_projects() {
        let t = people(vec![row![1, "ada", 90_000]]);
        let v = lens().get(&t);
        assert_eq!(v.schema().column_names(), vec!["id", "name"]);
        assert!(v.contains(&row![1, "ada"]));
    }

    #[test]
    fn put_preserves_hidden_columns_for_matched_keys() {
        let t = people(vec![row![1, "ada", 90_000]]);
        let t2 = lens().put(t, view(vec![row![1, "ada lovelace"]]));
        assert!(t2.contains(&row![1, "ada lovelace", 90_000]));
    }

    #[test]
    fn put_uses_defaults_for_fresh_keys() {
        let t = people(vec![]);
        let t2 = lens().put(t, view(vec![row![7, "newbie"]]));
        assert!(t2.contains(&row![7, "newbie", 30_000]));
    }

    #[test]
    fn put_deletes_rows_missing_from_view() {
        let t = people(vec![row![1, "ada", 90_000], row![2, "alan", 80_000]]);
        let t2 = lens().put(t, view(vec![row![2, "alan"]]));
        assert_eq!(t2.len(), 1);
    }

    #[test]
    fn well_behaved_when_key_is_retained() {
        let l = lens();
        let sources = [
            people(vec![row![1, "ada", 90_000], row![2, "alan", 80_000]]),
            people(vec![]),
        ];
        let views = [
            view(vec![row![1, "x"]]),
            view(vec![]),
            view(vec![row![3, "y"]]),
        ];
        assert!(check_well_behaved(&l, &sources, &views).is_empty());
    }

    #[test]
    fn put_put_fails_across_delete_recreate() {
        // Delete row 1 (empty view), then recreate it: the salary resets
        // to the default, so put∘put ≠ put.
        let l = lens();
        let sources = [people(vec![row![1, "ada", 90_000]])];
        let views = [view(vec![]), view(vec![row![1, "ada"]])];
        assert!(!check_put_put(&l, &sources, &views).is_empty());
    }

    #[test]
    fn checked_constructor_rejects_key_dropping() {
        let t = people(vec![]);
        assert!(project_lens_checked(&t, &["name"], &[]).is_err());
        assert!(project_lens_checked(&t, &["id", "name"], &[]).is_ok());
    }

    #[test]
    fn drop_lens_hides_one_column() {
        let t = people(vec![row![1, "ada", 90_000]]);
        let l = drop_lens(&t, "salary", Value::Int(1)).unwrap();
        let v = l.get(&t);
        assert_eq!(v.schema().column_names(), vec!["id", "name"]);
        let t2 = l.put(t, view(vec![row![1, "ada"], row![2, "new"]]));
        assert!(t2.contains(&row![1, "ada", 90_000]));
        assert!(t2.contains(&row![2, "new", 1]));
    }

    #[test]
    fn drop_lens_rejects_unknown_columns() {
        let t = people(vec![]);
        assert!(drop_lens(&t, "ghost", Value::Int(0)).is_err());
    }
}
