//! Relational lenses: bidirectional select / project / rename / drop /
//! join views over [`esm_store`] tables, in the style of Bohannon, Pierce
//! and Vaughan's *relational lenses* (simplified).
//!
//! This is the database instantiation of the paper's programme: the
//! introduction motivates bx over "database tables", and each lens built
//! here is an ordinary [`esm_lens::Lens`] over [`esm_store::Table`]s — hence, via
//! Lemma 4 ([`esm_lens::AsymBx`]), an entangled state monad whose hidden
//! state is the concrete database and whose `B` side is the view a client
//! edits.
//!
//! Each lens documents its *well-behavedness domain*: the typing
//! discipline of the original relational-lenses work is reproduced here as
//! documented preconditions plus runtime [`validate`] helpers, and the law
//! suites check both the lawful region and the failure modes outside it.
//!
//! [`validate`]: select::validate_select_view

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod join;
pub mod pipeline;
pub mod project;
pub mod rename;
pub mod select;
pub mod session;
pub mod testgen;

pub use join::join_dl_lens;
pub use pipeline::ViewDef;
pub use project::{drop_lens, project_lens};
pub use rename::rename_lens;
pub use select::select_lens;
pub use session::RelationalSession;
