//! The rename lens: `ρ` as a (trivially bidirectional) view.

use esm_lens::Lens;
use esm_store::Table;

/// The rename lens for `(old, new)` column-name pairs — an isomorphism on
/// tables, hence very well-behaved wherever the names exist and don't
/// collide.
pub fn rename_lens(renames: &[(&str, &str)]) -> Lens<Table, Table> {
    let fwd: Vec<(String, String)> = renames
        .iter()
        .map(|(o, n)| (o.to_string(), n.to_string()))
        .collect();
    let bwd: Vec<(String, String)> = fwd.iter().map(|(o, n)| (n.clone(), o.clone())).collect();
    Lens::new(
        move |s: &Table| {
            s.rename(&fwd)
                .expect("rename lens: source columns must exist")
        },
        move |_s: Table, v: Table| {
            v.rename(&bwd)
                .expect("rename lens: view columns must exist")
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_lens::laws::check_very_well_behaved;
    use esm_store::{row, Schema, Table, ValueType};

    fn t() -> Table {
        Table::from_rows(
            Schema::build(&[("id", ValueType::Int), ("nm", ValueType::Str)], &["id"]).unwrap(),
            vec![row![1, "a"]],
        )
        .unwrap()
    }

    #[test]
    fn get_renames_forward_put_renames_back() {
        let l = rename_lens(&[("nm", "name")]);
        let v = l.get(&t());
        assert_eq!(v.schema().column_names(), vec!["id", "name"]);
        let s2 = l.put(t(), v);
        assert_eq!(s2, t());
    }

    #[test]
    fn rename_lens_is_vwb() {
        let l = rename_lens(&[("nm", "name")]);
        let views = [t()
            .rename(&[("nm".to_string(), "name".to_string())])
            .unwrap()];
        assert!(check_very_well_behaved(&l, &[t()], &views).is_empty());
    }
}
