//! [`RelationalSession`]: a small bidirectional "database server".
//!
//! Owns one base table and any number of named, compiled view definitions.
//! Clients read views by name and write edited views back; every write is
//! a lens `put` against the current base, so concurrent-style interleaved
//! edits through *different* views compose naturally (each put sees the
//! others' effects). Every write reports the row-level [`Delta`] it caused
//! on the base table.

use std::collections::BTreeMap;

use esm_lens::Lens;
use esm_store::{Delta, StoreError, Table};

use crate::pipeline::ViewDef;

/// A session over one base table and many named bidirectional views.
#[derive(Debug, Clone)]
pub struct RelationalSession {
    base: Table,
    views: BTreeMap<String, Lens<Table, Table>>,
}

impl RelationalSession {
    /// Start a session over a base table.
    pub fn new(base: Table) -> RelationalSession {
        RelationalSession {
            base,
            views: BTreeMap::new(),
        }
    }

    /// Compile and register a named view. Fails if the definition does not
    /// type-check against the base schema or the name is taken.
    ///
    /// Columns the view's select stages constrain over the base schema get
    /// secondary indexes on the base table, so reading the view seeks
    /// instead of scanning (see [`ViewDef::index_candidates`]).
    pub fn define_view(
        &mut self,
        name: impl Into<String>,
        def: &ViewDef,
    ) -> Result<(), StoreError> {
        let name = name.into();
        if self.views.contains_key(&name) {
            return Err(StoreError::BadQuery(format!("view {name} already defined")));
        }
        let lens = def.compile(&self.base)?;
        for col in def.index_candidates() {
            self.base.create_index(&col)?;
        }
        self.views.insert(name, lens);
        Ok(())
    }

    /// Drop a view definition.
    pub fn drop_view(&mut self, name: &str) -> bool {
        self.views.remove(name).is_some()
    }

    /// The registered view names, sorted.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }

    /// The current base table.
    pub fn base(&self) -> &Table {
        &self.base
    }

    /// Read a view by name (the lens `get`).
    pub fn read_view(&self, name: &str) -> Result<Table, StoreError> {
        let lens = self
            .views
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
        Ok(lens.get(&self.base))
    }

    /// Write an edited view back by name (the lens `put`), returning the
    /// delta applied to the base table.
    pub fn write_view(&mut self, name: &str, view: Table) -> Result<Delta, StoreError> {
        let lens = self
            .views
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
        let new_base = lens.put(self.base.clone(), view);
        let delta = Delta::between(&self.base, &new_base)?;
        // Publish by applying the delta to the current base rather than
        // swapping in the lens output: apply clones the base (secondary
        // indexes included) and maintains them incrementally, so puts
        // that rebuild their table from scratch don't cost a full
        // re-index.
        self.base = delta.apply(&self.base)?;
        Ok(delta)
    }

    /// Edit a view in place: read it, apply `edit`, write it back.
    pub fn edit_view(
        &mut self,
        name: &str,
        edit: impl FnOnce(&mut Table) -> Result<(), StoreError>,
    ) -> Result<Delta, StoreError> {
        let mut view = self.read_view(name)?;
        edit(&mut view)?;
        self.write_view(name, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esm_store::{row, Operand, Predicate, Schema, Value, ValueType};

    fn employees() -> Table {
        Table::from_rows(
            Schema::build(
                &[
                    ("eid", ValueType::Int),
                    ("name", ValueType::Str),
                    ("dept", ValueType::Str),
                    ("salary", ValueType::Int),
                ],
                &["eid"],
            )
            .expect("valid"),
            vec![
                row![1, "ada", "research", 90_000],
                row![2, "alan", "ops", 80_000],
                row![3, "grace", "research", 95_000],
            ],
        )
        .expect("valid")
    }

    fn session_with_views() -> RelationalSession {
        let mut s = RelationalSession::new(employees());
        s.define_view(
            "research",
            &ViewDef::base().select(Predicate::eq(
                Operand::col("dept"),
                Operand::val("research"),
            )),
        )
        .expect("compiles");
        s.define_view(
            "directory",
            &ViewDef::base().project(
                &["eid", "name"],
                &[
                    ("dept", Value::str("unknown")),
                    ("salary", Value::Int(50_000)),
                ],
            ),
        )
        .expect("compiles");
        s
    }

    #[test]
    fn views_read_consistently() {
        let s = session_with_views();
        assert_eq!(s.view_names(), vec!["directory", "research"]);
        assert_eq!(s.read_view("research").expect("defined").len(), 2);
        assert_eq!(s.read_view("directory").expect("defined").len(), 3);
        assert!(s.read_view("ghost").is_err());
    }

    #[test]
    fn writes_through_one_view_are_visible_through_others() {
        let mut s = session_with_views();
        let delta = s
            .edit_view("research", |v| {
                v.upsert(row![3, "hopper", "research", 95_000]).map(|_| ())
            })
            .expect("edit applies");
        assert_eq!(delta.len(), 2); // one replace = delete + insert
                                    // The rename shows up in the directory view.
        let dir = s.read_view("directory").expect("defined");
        assert!(dir.contains(&row![3, "hopper"]));
    }

    #[test]
    fn directory_edits_preserve_hidden_salary() {
        let mut s = session_with_views();
        s.edit_view("directory", |v| {
            v.upsert(row![1, "ada lovelace"]).map(|_| ())
        })
        .expect("edit applies");
        assert!(s
            .base()
            .contains(&row![1, "ada lovelace", "research", 90_000]));
    }

    #[test]
    fn duplicate_view_names_are_rejected() {
        let mut s = session_with_views();
        let err = s.define_view("research", &ViewDef::base());
        assert!(err.is_err());
        assert!(s.drop_view("research"));
        assert!(s.define_view("research", &ViewDef::base()).is_ok());
    }

    #[test]
    fn select_views_auto_index_their_predicate_columns() {
        let s = session_with_views();
        // Defining the "research" select view indexed its `dept` column.
        assert_eq!(s.base().indexed_columns(), vec!["dept"]);
        // The index survives a write through the view and stays correct.
        let mut s = s;
        s.edit_view("research", |v| {
            v.upsert(row![7, "barbara", "research", 70_000]).map(|_| ())
        })
        .expect("edit applies");
        assert_eq!(s.base().indexed_columns(), vec!["dept"]);
        assert_eq!(s.read_view("research").expect("defined").len(), 3);
    }

    #[test]
    fn hippocratic_writes_produce_empty_deltas() {
        let mut s = session_with_views();
        let view = s.read_view("research").expect("defined");
        let delta = s.write_view("research", view).expect("put applies");
        assert!(delta.is_empty());
    }

    #[test]
    fn ill_typed_view_definitions_fail_at_define_time() {
        let mut s = RelationalSession::new(employees());
        // Selecting on a column that projection already dropped.
        let bad = ViewDef::base()
            .project(&["eid", "name"], &[])
            .select(Predicate::eq(Operand::col("salary"), Operand::val(1)));
        assert!(s.define_view("bad", &bad).is_err());
        assert!(s.view_names().is_empty());
    }
}
