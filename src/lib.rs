//! # Entangled State Monads
//!
//! Facade crate re-exporting the whole workspace: a Rust implementation of
//! *"Entangled State Monads"* (Cheney, McKinna, Stevens, Gibbons,
//! Abou-Saleh; BX 2014) — a monadic treatment of symmetric state-based
//! bidirectional transformations (bx).
//!
//! A bx maintains consistency between two information sources. The paper's
//! insight: a monad that carries the structure of a *state monad in two
//! entangled ways* — `get`/`set` on an `A` view and on a `B` view of some
//! shared hidden state — *is* a bidirectional transformation, and the
//! classical formalisms (asymmetric lenses, symmetric lenses, algebraic bx)
//! are all instances.
//!
//! ## Crate map
//!
//! - [`monad`] — the monadic substrate ([`monad::MonadFamily`], state,
//!   writer, nondeterminism, probability, `StateT`, simulated IO).
//! - [`core`] — the paper's contribution: set-bx and put-bx, their
//!   equivalence, entanglement, composition, effectful bx.
//! - [`lens`] — asymmetric lenses and their embedding (Lemma 4).
//! - [`algebraic`] — Stevens-style algebraic bx (Lemma 5).
//! - [`symmetric`] — Hofmann–Pierce–Wagner symmetric lenses (Lemma 6).
//! - [`store`] — an in-memory relational database substrate (tables,
//!   predicates, deltas, secondary B-tree indexes).
//! - [`relational`] — relational lenses over [`store`] (select / project /
//!   join views as bx).
//! - [`engine`] — the concurrent, transactional bidirectional database
//!   engine: snapshot-isolated transactions with first-committer-wins, a
//!   write-ahead log with replay/recovery, and a lock-striped server where
//!   many clients hold entangled views over shared base tables — all
//!   behind one [`engine::Engine`] trait with per-client
//!   [`engine::Session`]s.
//! - [`net`] — the network front end: a CRC-framed wire protocol for the
//!   whole `Engine` surface, a thread-pooled non-blocking socket server
//!   multiplexing many clients onto one engine, and a
//!   [`net::RemoteEngine`] client so entangled views work across
//!   processes unchanged.
//! - [`modelsync`] — a model-driven-engineering substrate: class models ↔
//!   relational schemas as a symmetric lens with complement.
//! - [`lawcheck`] — executable law checking for every law in the paper.
//!
//! ## Quickstart
//!
//! ```
//! use esm::core::state::{SbxOps, BxSession};
//! use esm::lens::{Lens, AsymBx};
//!
//! // An asymmetric lens from a (name, age) record onto its age...
//! let l: Lens<(String, u32), u32> =
//!     Lens::new(|s: &(String, u32)| s.1, |mut s: (String, u32), v| { s.0 = s.0; s.1 = v; s });
//! // ...becomes a set-bx between whole records and ages (Lemma 4).
//! let bx = AsymBx::new(l);
//! let mut session = BxSession::new(("ada".to_string(), 36), bx);
//! assert_eq!(session.b(), 36);
//! session.set_b(37);
//! assert_eq!(session.a(), ("ada".to_string(), 37));
//! ```
//!
//! ## Quickstart: the concurrent engine
//!
//! The same idea at database scale — entangled views served
//! transactionally to many clients (see [`engine`] for the architecture:
//! transaction lifecycle, WAL format, index maintenance):
//!
//! ```
//! use esm::engine::EngineServer;
//! use esm::relational::ViewDef;
//! use esm::store::{row, Database, Operand, Predicate, Schema, Table, ValueType};
//!
//! let schema = Schema::build(
//!     &[("id", ValueType::Int), ("dept", ValueType::Str)], &["id"],
//! ).unwrap();
//! let mut db = Database::new();
//! db.create_table(
//!     "staff",
//!     Table::from_rows(schema, vec![row![1, "research"], row![2, "ops"]]).unwrap(),
//! ).unwrap();
//!
//! let engine = EngineServer::new(db); // Clone the handle into any thread.
//! let research = engine.define_view(
//!     "research", "staff",
//!     &ViewDef::base().select(Predicate::eq(Operand::col("dept"), Operand::val("research"))),
//! ).unwrap();
//! let delta = research.edit(|v| Ok(v.upsert(row![3, "research"]).map(|_| ())?)).unwrap();
//! assert_eq!(delta.inserted.len(), 1);                  // what the write did
//! assert_eq!(engine.recovered_database().unwrap(), engine.snapshot()); // WAL law
//! ```

pub use esm_algebraic as algebraic;
pub use esm_core as core;
pub use esm_engine as engine;
pub use esm_lawcheck as lawcheck;
pub use esm_lens as lens;
pub use esm_modelsync as modelsync;
pub use esm_monad as monad;
pub use esm_net as net;
pub use esm_obs as obs;
pub use esm_relational as relational;
pub use esm_store as store;
pub use esm_symmetric as symmetric;
